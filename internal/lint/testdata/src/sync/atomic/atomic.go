// Package atomic is a stub of sync/atomic for the atomicfield golden
// tests. The stub loader resolves the import path "sync/atomic" to
// this package, which is all the analyzer's package-identity check
// needs.
package atomic

func AddInt64(addr *int64, delta int64) (new int64)     { return }
func LoadInt64(addr *int64) (val int64)                 { return }
func StoreInt64(addr *int64, val int64)                 {}
func AddUint64(addr *uint64, delta uint64) (new uint64) { return }
func LoadUint32(addr *uint32) (val uint32)              { return }
func StoreUint32(addr *uint32, val uint32)              {}
