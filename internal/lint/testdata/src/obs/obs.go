// Package obs is a stub of repro/internal/obs and simultaneously the
// in-package golden target for the nilsafeobs analyzer: path-suffix
// matching makes the analyzer treat it as internal/obs, so exported
// pointer-receiver methods on the nil-safe types below must guard
// `recv == nil` before touching fields. Seeded violations carry want
// annotations; everything else must stay silent.
package obs

// Hist mirrors the latency histogram. Count is exported so the
// caller-side golden test can attempt a direct field access.
type Hist struct {
	Count int64
	sum   int64
}

// Observe guards before touching fields: the canonical shape.
func (h *Hist) Observe(v int64) {
	if h == nil {
		return
	}
	h.Count++
	h.sum += v
}

// Sum forgot the guard.
func (h *Hist) Sum() int64 {
	return h.sum // want `Hist\.Sum accesses field sum before guarding the nil receiver`
}

// Mean reads a field in an expression before the guard statement.
func (h *Hist) Mean() int64 {
	n := h.Count // want `Hist\.Mean accesses field Count before guarding the nil receiver`
	if h == nil {
		return 0
	}
	return h.sum / n
}

// reset is unexported: the contract covers the exported API only.
func (h *Hist) reset() {
	h.sum = 0
	h.Count = 0
}

type Trace struct {
	off bool
	n   int
}

// Step guards through a short-circuit chain: `t == nil` is evaluated
// first, so the trailing field read is safe.
func (t *Trace) Step() {
	if t == nil || t.off {
		return
	}
	t.n++
}

type Tracer struct{ sampled uint64 }

// Start touches no fields before delegating; method calls on a nil
// receiver are fine as long as the callee guards.
func (tr *Tracer) Start() *Trace {
	return tr.begin()
}

func (tr *Tracer) begin() *Trace {
	if tr == nil {
		return nil
	}
	tr.sampled++
	return &Trace{}
}

type Journal struct{ events []string }

// Append panics instead of returning: any terminating guard body
// counts.
func (j *Journal) Append(ev string) {
	if j == nil {
		panic("nil journal")
	}
	j.events = append(j.events, ev)
}

type SlowLog struct{ thresh int64 }

// Observe checks the wrong condition first: the nil test must lead
// the short-circuit spine.
func (l *SlowLog) Observe(d int64) {
	if d < l.thresh || l == nil { // want `SlowLog\.Observe accesses field thresh before guarding the nil receiver`
		return
	}
}

type Ledger struct{ reads int64 }

// AddRead may run statements that do not touch the receiver before
// the guard.
func (g *Ledger) AddRead(n int64) {
	total := n
	if g == nil {
		return
	}
	g.reads += total
}

// Prom is the Prometheus exposition sink; it is not a nil-safe type,
// but its method set is what the metricname analyzer keys on.
type Prom struct{}

func (p *Prom) Counter(name, help, labels string, v uint64)   {}
func (p *Prom) CounterF(name, help, labels string, v float64) {}
func (p *Prom) Gauge(name, help, labels string, v int64)      {}
func (p *Prom) GaugeF(name, help, labels string, v float64)   {}
func (p *Prom) Histogram(name, help, labels string, h *Hist)  {}
