// Package compaction is a stub of repro/internal/compaction for
// analyzer golden tests: the merge/dedup iterator lifetime surface
// used by subcompaction slices.
package compaction

type Entry struct{ Key, Value []byte }

type Iterator interface {
	Next() bool
	Entry() Entry
	Err() error
	Close() error
}

type Table struct{}

type Slice struct{ Lo, Hi []byte }

type MergeIterator struct{}

func NewMergeIterator(its []Iterator) *MergeIterator { return &MergeIterator{} }

func NewSliceMerge(tables []Table, slc Slice) (*MergeIterator, error) {
	return &MergeIterator{}, nil
}

func (m *MergeIterator) Next() bool   { return false }
func (m *MergeIterator) Entry() Entry { return Entry{} }
func (m *MergeIterator) Err() error   { return nil }
func (m *MergeIterator) Close() error { return nil }

type DedupIterator struct{}

func NewDedupIterator(m *MergeIterator, dropTombstones bool, skip func(key []byte) bool) *DedupIterator {
	return &DedupIterator{}
}

func (d *DedupIterator) Next() bool   { return false }
func (d *DedupIterator) Entry() Entry { return Entry{} }
func (d *DedupIterator) Err() error   { return nil }
func (d *DedupIterator) Close() error { return nil }
