// Package shard is a stub of repro/internal/shard for analyzer golden
// tests: the names and result shapes the analyzers match on, none of
// the behaviour. It is found because the analyzers match packages by
// path suffix ("internal/shard" binds to a bare "shard" too).
package shard

type DB struct{}

type Batch struct{}

func (b *Batch) Put(k, v []byte) {}

// Commit is the epoch ticket minted by Prepare.
type Commit struct{ epoch uint64 }

func (db *DB) Prepare(b *Batch) (*Commit, error) { return &Commit{}, nil }

func (c *Commit) Epoch() uint64 { return c.epoch }
func (c *Commit) Commit() error { return nil }
func (c *Commit) Abort()        {}

type Snapshot struct{}

func (db *DB) NewSnapshot() (*Snapshot, error) { return &Snapshot{}, nil }

func (s *Snapshot) Get(k []byte) ([]byte, error)                  { return nil, nil }
func (s *Snapshot) NewIterator(start, limit []byte) (Iter, error) { return nil, nil }
func (s *Snapshot) Close() error                                  { return nil }

// Iter is the store iterator interface; mustclose tracks it as a
// resource even though it is not a concrete type.
type Iter interface {
	Next() bool
	Key() []byte
	Value() []byte
	Close() error
}
