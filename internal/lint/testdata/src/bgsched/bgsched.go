// Package bgsched is a stub of repro/internal/bgsched for analyzer
// golden tests: the pool and owner-handle lifetime surface.
package bgsched

type Class int

const (
	ClassFlush Class = iota
	ClassSlice
	ClassL0
	ClassDeep
)

type Pool struct{}

func NewPool(workers int) *Pool { return &Pool{} }

func (p *Pool) Workers() int     { return 0 }
func (p *Pool) NewOwner() *Owner { return &Owner{} }
func (p *Pool) Close()           {}

type Owner struct{}

func (o *Owner) Submit(c Class, shard int, fn func()) bool { return false }
func (o *Owner) Close() error                              { return nil }
