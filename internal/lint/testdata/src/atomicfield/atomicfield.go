// Package atomicfield seeds violations of the sync/atomic access
// discipline: a field touched through sync/atomic anywhere must be
// touched that way everywhere, and raw 64-bit atomic fields must sit
// at 8-byte aligned offsets under 32-bit layout rules.
package atomicfield

import "sync/atomic"

// ctr's n is accessed atomically in bump, so the plain read in read
// is a race waiting for an interleaving.
type ctr struct {
	n    int64
	mode uint32
}

func bump(c *ctr) {
	atomic.AddInt64(&c.n, 1)
	atomic.StoreUint32(&c.mode, 1)
}

func read(c *ctr) int64 {
	return c.n // want `field n is accessed with sync/atomic .* and must not be accessed plainly`
}

func readMode(c *ctr) uint32 {
	return atomic.LoadUint32(&c.mode) // consistent: no finding
}

// padded puts the 64-bit atomic after a bool: on 386/arm the field
// lands at offset 4 and atomic.AddInt64 faults.
type padded struct {
	closed bool
	hits   int64 // want `64-bit atomic field hits is at offset 4 under 32-bit alignment`
}

func bumpPadded(p *padded) {
	atomic.AddInt64(&p.hits, 1)
}

// aligned leads with the 64-bit field: offset 0 is always safe.
type aligned struct {
	hits   int64
	closed bool
}

func bumpAligned(a *aligned) {
	atomic.AddInt64(&a.hits, 1)
}

// plain is never touched atomically, so ordinary access is fine.
type plain struct {
	n int64
}

func incPlain(p *plain) {
	p.n++
}
