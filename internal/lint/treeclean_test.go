package lint

import "testing"

// TestTreeIsClean runs the full suite over the repository — the same
// check CI's triadlint step performs — so a violation anywhere in the
// tree fails `go test ./internal/lint` too, keeping the invariants
// enforced even where triadlint is not wired in.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped in -short")
	}
	l := NewLoader("../..")
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader found no packages")
	}
	for _, d := range Run(pkgs, Analyzers()) {
		t.Errorf("%s", d)
	}
}
