package lint

import (
	"go/ast"
	"go/constant"
	"regexp"
	"strings"
)

// MetricName vets the metric names handed to the obs.Prom emission
// methods (Counter, CounterF, Gauge, GaugeF, Histogram) at compile
// time, so a new series cannot dodge the runtime promlint exposition test by
// simply never being scraped in CI:
//
//   - names must be compile-time constants (a dynamic name is
//     unvettable and invites label-cardinality accidents);
//   - names must be triad_* snake_case: [a-z0-9] runs separated by
//     single underscores;
//   - counters must end in _total; gauges and histograms must not;
//   - histograms must carry a base-unit suffix (_seconds or _bytes);
//   - the histogram expansion suffixes _bucket/_sum/_count are
//     reserved, and abbreviated or non-base units (_ms, _secs, _kb,
//     ...) are rejected in favor of _seconds/_bytes.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "metric names at obs.Prom emission sites must be constant triad_* snake_case with conventional unit suffixes",
	Run:  runMetricName,
}

var promMethods = map[string]bool{
	"Counter": true, "CounterF": true, "Gauge": true, "GaugeF": true, "Histogram": true,
}

var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// badUnitSuffixes maps rejected suffixes to the base unit to use.
var badUnitSuffixes = map[string]string{
	"_ms": "_seconds", "_millis": "_seconds", "_milliseconds": "_seconds",
	"_us": "_seconds", "_micros": "_seconds", "_microseconds": "_seconds",
	"_ns": "_seconds", "_nanos": "_seconds", "_nanoseconds": "_seconds",
	"_sec": "_seconds", "_secs": "_seconds",
	"_kb": "_bytes", "_mb": "_bytes", "_gb": "_bytes",
	"_kib": "_bytes", "_mib": "_bytes", "_gib": "_bytes",
	"_byte": "_bytes",
}

func runMetricName(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !promMethods[sel.Sel.Name] {
				return true
			}
			recv := pass.TypesInfo.Types[sel.X]
			if !isNamedType(recv.Type, "internal/obs", "Prom") {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			arg := call.Args[0]
			tv := pass.TypesInfo.Types[arg]
			if tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"metric name passed to Prom.%s is not a compile-time constant; constant names are what let triadlint and promlint vet the series", sel.Sel.Name)
				return true
			}
			name := constant.StringVal(tv.Value)
			checkMetricName(pass, arg, sel.Sel.Name, name)
			return true
		})
	}
}

func checkMetricName(pass *Pass, arg ast.Expr, method, name string) {
	report := func(format string, args ...any) {
		pass.Reportf(arg.Pos(), "metric %q: "+format, append([]any{name}, args...)...)
	}
	if !metricNameRE.MatchString(name) {
		report("not snake_case ([a-z0-9] runs separated by single underscores)")
		return
	}
	if !strings.HasPrefix(name, "triad_") {
		report("missing the triad_ namespace prefix")
	}
	for _, reserved := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, reserved) {
			report("suffix %s is reserved for the histogram exposition expansion", reserved)
			return
		}
	}
	for bad, good := range badUnitSuffixes {
		if strings.HasSuffix(name, bad) {
			report("unit suffix %s is not a Prometheus base unit; use %s", bad, good)
			return
		}
	}
	isCounter := method == "Counter" || method == "CounterF"
	hasTotal := strings.HasSuffix(name, "_total")
	switch {
	case isCounter && !hasTotal:
		report("counters must end in _total")
	case !isCounter && hasTotal:
		report("_total is the counter suffix; %s emits a %s", method, metricKind(method))
	}
	if method == "Histogram" &&
		!strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
		report("histograms must carry a base-unit suffix (_seconds or _bytes)")
	}
}

func metricKind(method string) string {
	if method == "Histogram" {
		return "histogram"
	}
	return "gauge"
}
