package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. The shape deliberately
// mirrors golang.org/x/tools/go/analysis so the suite could migrate to
// the real framework if the repository ever grows dependencies.
type Analyzer struct {
	Name string // short lower-case identifier, shown in findings
	Doc  string // one-line description of the invariant enforced
	Run  func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every package and returns the findings
// in (file, line, analyzer) order — the order is stable so driver
// output and test comparisons are deterministic.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			a.Run(pass)
		}
	}
	sortDiagnostics(diags)
	return dedupDiagnostics(diags)
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// dedupDiagnostics collapses findings reported identically from the
// plain and test-augmented views of the same package.
func dedupDiagnostics(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// --- shared type-matching helpers -----------------------------------

// pkgMatches reports whether p's import path is path itself or ends in
// "/"+path. Analyzers name packages by suffix ("internal/shard",
// "internal/obs", ...) so the same analyzer binds to both the real
// tree (repro/internal/shard) and the stub packages under testdata
// (shard — matched via their last path element).
func pkgMatches(p *types.Package, suffix string) bool {
	if p == nil {
		return false
	}
	path := p.Path()
	if path == suffix {
		return true
	}
	if strings.HasSuffix(path, "/"+suffix) {
		return true
	}
	// testdata stubs use the bare last element of the suffix.
	if i := strings.LastIndexByte(suffix, '/'); i >= 0 {
		last := suffix[i+1:]
		if path == last || strings.HasSuffix(path, "/"+last) {
			return true
		}
	}
	return false
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamedType reports whether t (through pointers) is type name in a
// package matching pkgSuffix.
func isNamedType(t types.Type, pkgSuffix, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && pkgMatches(obj.Pkg(), pkgSuffix)
}

// calleeName returns the syntactic name of a call target: the method
// or function identifier, ignoring the receiver/package qualifier.
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// resultTypes returns the flattened result types of a call expression.
func resultTypes(info *types.Info, call *ast.CallExpr) []types.Type {
	tv, ok := info.Types[call]
	if !ok {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		out := make([]types.Type, t.Len())
		for i := range t.Len() {
			out[i] = t.At(i).Type()
		}
		return out
	default:
		if t == nil {
			return nil
		}
		return []types.Type{t}
	}
}

// buildParents maps every node in root to its enclosing node.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// enclosingStmt walks up the parent chain to the nearest statement for
// which the CFG has a node.
func enclosingStmt(parents map[ast.Node]ast.Node, g *cfg, n ast.Node) ast.Stmt {
	for n != nil {
		if s, ok := n.(ast.Stmt); ok {
			if _, ok := g.nodes[s]; ok {
				return s
			}
		}
		n = parents[n]
	}
	return nil
}

// funcBodies yields every function body in the files: declarations and
// function literals alike, each paired with its receiver declaration
// (nil for non-methods and literals).
func funcBodies(files []*ast.File, fn func(body *ast.BlockStmt, decl *ast.FuncDecl)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d.Body, d)
				}
			case *ast.FuncLit:
				fn(d.Body, nil)
			}
			return true
		})
	}
}
