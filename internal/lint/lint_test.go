package lint

import "testing"

// Each analyzer is exercised against its golden package under
// testdata/src: seeded violations must be reported (the `// want`
// annotations) and the pinned-good idioms must stay silent.

func TestTicketLeak(t *testing.T)  { runGolden(t, TicketLeak, "ticketleak") }
func TestMustClose(t *testing.T)   { runGolden(t, MustClose, "mustclose") }
func TestAtomicField(t *testing.T) { runGolden(t, AtomicField, "atomicfield") }
func TestMetricName(t *testing.T)  { runGolden(t, MetricName, "metricname") }

// nilsafeobs has two sides: the guard discipline inside the obs
// package itself, and the no-direct-field-access rule for callers.
func TestNilSafeObsInPackage(t *testing.T) { runGolden(t, NilSafeObs, "obs") }
func TestNilSafeObsCallers(t *testing.T)   { runGolden(t, NilSafeObs, "nilsafeobs") }

func TestAnalyzersRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc or run function", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"ticketleak", "mustclose", "nilsafeobs", "atomicfield", "metricname"} {
		if !names[want] {
			t.Errorf("analyzer %q not registered", want)
		}
	}
}
