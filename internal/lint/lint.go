// Package lint is TRIAD's own static-analysis suite: a set of
// analyzers that machine-check invariants the store's correctness
// rests on but the compiler cannot see. Each analyzer encodes one
// hand-enforced convention that has bitten (or would bite) at runtime:
//
//   - ticketleak: every epoch ticket (*shard.Commit) returned by
//     Prepare must reach Commit() or Abort() on all control-flow
//     paths. A leaked ticket parks the committed watermark forever —
//     every later write and snapshot queued behind it stalls.
//   - mustclose: snapshots, iterators and block-cache handles pin real
//     resources (memtable overlays, zombie sstables, cache bytes);
//     each constructor result must be closed/released on all paths or
//     handed to a tracked owner.
//   - nilsafeobs: the observability layer compiles down to pointer
//     tests when disabled, which only works if every exported method
//     on obs.Hist/Tracer/Trace/Journal/SlowLog/Ledger guards the nil
//     receiver before touching a field — and nothing outside
//     internal/obs touches those fields at all.
//   - atomicfield: a struct field accessed through sync/atomic
//     anywhere must be accessed atomically everywhere, and raw 64-bit
//     atomic fields must sit at 8-byte-aligned offsets on 32-bit
//     targets.
//   - metricname: metric names handed to the obs.Prom emission
//     methods must be compile-time constants in triad_* snake_case
//     with the conventional unit suffixes, so a new series cannot
//     dodge the promlint exposition test.
//
// The suite is built directly on go/ast and go/types (the repository
// is deliberately dependency-free, so golang.org/x/tools/go/analysis
// is re-modeled here in miniature: see framework.go and loader.go).
// cmd/triadlint is the driver; `triadlint ./...` runs every analyzer
// over the tree, including test files, and exits non-zero on findings.
//
// Adding an analyzer: write a file defining an *Analyzer with a Run
// over a *Pass, append it in Analyzers, add a testdata/src/<name> tree
// with // want annotations, and a <name>_test.go calling runTest.
package lint

// Analyzers returns the full suite in stable order. Both cmd/triadlint
// and the in-repo self-check test run exactly this set.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		TicketLeak,
		MustClose,
		NilSafeObs,
		AtomicField,
		MetricName,
	}
}
