package lint

// The golden-test harness mirrors golang.org/x/tools/go/analysis/
// analysistest in miniature: each analyzer gets a package under
// testdata/src/<name>/ containing seeded violations annotated with
// `// want "regexp"` comments on the line the diagnostic is reported
// at, plus known-good code that must stay silent. Stub dependencies
// (shard, lsm, sstable, obs, sync/atomic) live beside the targets and
// are resolved by import path relative to testdata/src, so the
// analyzers bind to them through the same suffix matching they use on
// the real tree.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// stubLoader type-checks packages rooted at testdata/src, resolving
// imports among them (including the sync/atomic stub, whose import
// path must be exactly "sync/atomic" for the analyzers' package-path
// tests to hold).
type stubLoader struct {
	fset *token.FileSet
	root string
	pkgs map[string]*Package
}

func newStubLoader() *stubLoader {
	return &stubLoader{
		fset: token.NewFileSet(),
		root: filepath.Join("testdata", "src"),
		pkgs: make(map[string]*Package),
	}
}

func (l *stubLoader) Import(path string) (*types.Package, error) {
	p, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

func (l *stubLoader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("stub package %q: %v", path, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("stub package %q: no Go files in %s", path, dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l, Sizes: types.SizesFor("gc", "amd64")}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check stub %q: %v", path, err)
	}
	p := &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, TypesInfo: info}
	l.pkgs[path] = p
	return p, nil
}

// want is one expectation parsed from a `// want "re"` comment.
type want struct {
	line int
	re   *regexp.Regexp
	used bool
}

// parseWants extracts the expectations from a package's files, keyed
// by filename.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text = strings.TrimSpace(text)
				body, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitWantPatterns(t, pos, body) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants[pos.Filename] = append(wants[pos.Filename], &want{line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitWantPatterns parses the sequence of quoted or backquoted
// regexps after the `want` keyword.
func splitWantPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var pats []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return pats
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			pats = append(pats, s[1:1+end])
			s = s[end+2:]
		case '"':
			// Find the closing unescaped quote and let strconv undo
			// the escaping.
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end == len(s) {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want pattern %s: %v", pos, s[:end+1], err)
			}
			pats = append(pats, unq)
			s = s[end+1:]
		default:
			t.Fatalf("%s: want patterns must be quoted or backquoted: %s", pos, s)
		}
	}
}

// runGolden loads testdata/src/<path>, runs exactly one analyzer over
// it, and compares the diagnostics against the `// want` annotations:
// every diagnostic must be expected, and every expectation must fire.
func runGolden(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	l := newStubLoader()
	pkg, err := l.load(path)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{a})
	wants := parseWants(t, l.fset, pkg.Files)

	for _, d := range diags {
		matched := false
		for _, w := range wants[d.Pos.Filename] {
			if !w.used && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for file, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matched want %q", file, w.line, w.re)
			}
		}
	}
}
