package workload

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformCoversKeySpace(t *testing.T) {
	d := Uniform{N: 100}
	rng := rand.New(rand.NewSource(1))
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		k := d.Next(rng)
		if k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) < 95 {
		t.Fatalf("uniform covered only %d/100 keys", len(seen))
	}
}

func TestHotColdSkew(t *testing.T) {
	d := HotCold{N: 10000, HotFraction: 0.01, HotAccess: 0.99}
	rng := rand.New(rand.NewSource(2))
	hot := 0
	n := 100000
	for i := 0; i < n; i++ {
		if d.Next(rng) < 100 { // first 1% of key space
			hot++
		}
	}
	frac := float64(hot) / float64(n)
	if math.Abs(frac-0.99) > 0.01 {
		t.Fatalf("hot access fraction = %.3f, want ≈0.99", frac)
	}
}

func TestHotColdAccessProbabilitySumsToOne(t *testing.T) {
	d := HotCold{N: 1000, HotFraction: 0.20, HotAccess: 0.80}
	var sum float64
	for i := uint64(0); i < d.N; i++ {
		sum += d.AccessProbability(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %.6f", sum)
	}
	// Hot keys strictly more popular than cold.
	if d.AccessProbability(0) <= d.AccessProbability(999) {
		t.Fatal("hot key not more popular than cold key")
	}
}

func TestHotColdEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Tiny hot fraction rounds up to at least one hot key.
	d := HotCold{N: 10, HotFraction: 0.001, HotAccess: 0.99}
	for i := 0; i < 100; i++ {
		if k := d.Next(rng); k >= 10 {
			t.Fatalf("key %d out of range", k)
		}
	}
	// All-hot degenerates gracefully.
	d = HotCold{N: 10, HotFraction: 1.0, HotAccess: 0.5}
	for i := 0; i < 100; i++ {
		if k := d.Next(rng); k >= 10 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestZipfInRangeAndSkewed(t *testing.T) {
	d := Zipf{N: 1000, S: 1.2}
	rng := rand.New(rand.NewSource(4))
	low := 0
	for i := 0; i < 10000; i++ {
		k := d.Next(rng)
		if k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
		if k < 10 {
			low++
		}
	}
	// Zipf concentrates mass at small ranks.
	if low < 2000 {
		t.Fatalf("only %d/10000 draws in the top 10 ranks; not skewed", low)
	}
}

func TestProductionWorkloads(t *testing.T) {
	for id := 1; id <= 4; id++ {
		p, err := ProductionWorkload(id, 1000)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(id)))
		for i := 0; i < 10000; i++ {
			if k := p.Next(rng); k >= p.Keys() {
				t.Fatalf("W%d key %d out of range %d", id, k, p.Keys())
			}
		}
		if p.Updates <= p.Keys() {
			t.Fatalf("W%d updates (%d) not greater than keys (%d)", id, p.Updates, p.Keys())
		}
		// Probability curve is (weakly) decreasing in rank.
		var prev = math.Inf(1)
		for _, frac := range []float64{0.001, 0.05, 0.3, 0.8} {
			pr := p.AccessProbability(uint64(frac * float64(p.Keys())))
			if pr > prev+1e-12 {
				t.Fatalf("W%d access probability increases with rank", id)
			}
			prev = pr
		}
	}
	if _, err := ProductionWorkload(5, 1); err == nil {
		t.Fatal("unknown workload id accepted")
	}
}

// TestProductionSkewOrdering checks the Figure 7 family split: W2 and W4
// concentrate more mass on their hottest keys than W1 and W3.
func TestProductionSkewOrdering(t *testing.T) {
	top := func(id int) float64 {
		p, _ := ProductionWorkload(id, 1000)
		rng := rand.New(rand.NewSource(9))
		hits := 0
		cut := uint64(float64(p.Keys()) * 0.02)
		if cut == 0 {
			cut = 1
		}
		for i := 0; i < 50000; i++ {
			if p.Next(rng) < cut {
				hits++
			}
		}
		return float64(hits) / 50000
	}
	w1, w2, w3, w4 := top(1), top(2), top(3), top(4)
	if !(w2 > w1 && w2 > w3 && w4 > w1 && w4 > w3) {
		t.Fatalf("skew ordering violated: top-2%% mass W1=%.2f W2=%.2f W3=%.2f W4=%.2f", w1, w2, w3, w4)
	}
}

func TestStreamDeterministic(t *testing.T) {
	mix := Mix{Dist: HotCold{N: 1000, HotFraction: 0.1, HotAccess: 0.9}, ReadFraction: 0.3}
	a, b := mix.NewStream(5), mix.NewStream(5)
	for i := 0; i < 1000; i++ {
		oa, ob := a.Next(), b.Next()
		if oa.Read != ob.Read || !bytes.Equal(oa.Key, ob.Key) {
			t.Fatalf("streams diverged at op %d", i)
		}
	}
	c := mix.NewStream(6)
	diff := 0
	for i := 0; i < 1000; i++ {
		if !bytes.Equal(a.Next().Key, c.Next().Key) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestStreamReadFraction(t *testing.T) {
	mix := Mix{Dist: Uniform{N: 100}, ReadFraction: 0.5}
	s := mix.NewStream(1)
	reads := 0
	for i := 0; i < 10000; i++ {
		if s.Next().Read {
			reads++
		}
	}
	if reads < 4700 || reads > 5300 {
		t.Fatalf("reads = %d/10000, want ≈5000", reads)
	}
	// Pure-write stream.
	s = Mix{Dist: Uniform{N: 100}}.NewStream(1)
	for i := 0; i < 100; i++ {
		op := s.Next()
		if op.Read {
			t.Fatal("zero read fraction produced a read")
		}
		if len(op.Key) != 8 || len(op.Value) != 255 {
			t.Fatalf("default sizes = %d/%d, want 8/255", len(op.Key), len(op.Value))
		}
	}
}

func TestStreamDeleteFraction(t *testing.T) {
	mix := Mix{Dist: Uniform{N: 100}, ReadFraction: 0.3, DeleteFraction: 0.2}
	s := mix.NewStream(1)
	var reads, deletes, writes int
	for i := 0; i < 10000; i++ {
		op := s.Next()
		switch {
		case op.Read:
			reads++
		case op.Delete:
			deletes++
		default:
			writes++
			if op.Value == nil {
				t.Fatal("write op without value")
			}
		}
	}
	if reads < 2700 || reads > 3300 {
		t.Fatalf("reads = %d, want ≈3000", reads)
	}
	if deletes < 1700 || deletes > 2300 {
		t.Fatalf("deletes = %d, want ≈2000", deletes)
	}
	if writes < 4700 || writes > 5300 {
		t.Fatalf("writes = %d, want ≈5000", writes)
	}
}

func TestEncodeKeyOrderPreserving(t *testing.T) {
	a, b := make([]byte, 8), make([]byte, 8)
	prev := make([]byte, 8)
	for _, idx := range []uint64{0, 1, 255, 256, 1 << 20, 1 << 40} {
		EncodeKey(a, idx)
		if bytes.Compare(prev, a) >= 0 && idx > 0 {
			t.Fatalf("encoding not order preserving at %d", idx)
		}
		copy(prev, a)
	}
	// Short keys truncate from the high bytes.
	short := make([]byte, 4)
	EncodeKey(short, 0x01020304)
	EncodeKey(b, 0x01020304)
	if !bytes.Equal(short, b[4:]) {
		t.Fatalf("short encoding = %x, want %x", short, b[4:])
	}
}

// TestQuickEncodeKeyMonotone: EncodeKey preserves numeric order for
// arbitrary pairs.
func TestQuickEncodeKeyMonotone(t *testing.T) {
	check := func(x, y uint64) bool {
		a, b := make([]byte, 8), make([]byte, 8)
		EncodeKey(a, x)
		EncodeKey(b, y)
		switch {
		case x < y:
			return bytes.Compare(a, b) < 0
		case x > y:
			return bytes.Compare(a, b) > 0
		default:
			return bytes.Equal(a, b)
		}
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestZipfReproducible: the sampler cache must not break determinism —
// two streams with the same seed produce identical draws, and the same
// rng reused across two Zipf values keeps each (N, S) stream stable.
func TestZipfReproducible(t *testing.T) {
	d := Zipf{N: 10000, S: 1.3}
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		if d.Next(a) != d.Next(b) {
			t.Fatalf("identically seeded Zipf streams diverged at draw %d", i)
		}
	}
}

func TestMultiTenantSkewAndRanges(t *testing.T) {
	d := MultiTenant{Tenants: 8, TenantS: 2.0, PerTenant: Zipf{N: 1000, S: 1.2}}
	if d.Keys() != 8000 {
		t.Fatalf("Keys = %d, want 8000", d.Keys())
	}
	rng := rand.New(rand.NewSource(11))
	perTenant := make([]int, 8)
	const n = 50000
	for i := 0; i < n; i++ {
		k := d.Next(rng)
		if k >= d.Keys() {
			t.Fatalf("key %d out of range", k)
		}
		perTenant[k/1000]++
	}
	// Tenant 0 must dominate and the tail must still see traffic spread
	// over the slices (the hot/cold shard imbalance the cache bench uses).
	if frac := float64(perTenant[0]) / n; frac < 0.5 {
		t.Fatalf("tenant 0 drew only %.2f of traffic, want > 0.5", frac)
	}
	if perTenant[0] <= perTenant[7] {
		t.Fatalf("tenant skew inverted: %v", perTenant)
	}
}

func TestMultiTenantSplitsAlignWithSlices(t *testing.T) {
	d := MultiTenant{Tenants: 4, TenantS: 1.5, PerTenant: Uniform{N: 100}}
	splits := d.TenantSplits(8)
	if len(splits) != 3 {
		t.Fatalf("got %d splits, want 3", len(splits))
	}
	for i, want := range []uint64{100, 200, 300} {
		k := make([]byte, 8)
		EncodeKey(k, want)
		if !bytes.Equal(splits[i], k) {
			t.Fatalf("split %d = %x, want encoding of %d", i, splits[i], want)
		}
	}
}

// BenchmarkZipfNext measures the per-sample cost with the cached
// sampler; BenchmarkZipfNextRebuild is the old behaviour (a fresh
// rand.NewZipf per draw) kept inline for comparison.
func BenchmarkZipfNext(b *testing.B) {
	d := Zipf{N: 1 << 20, S: 1.2}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Next(rng)
	}
}

func BenchmarkZipfNextRebuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rand.NewZipf(rng, 1.2, 1, 1<<20-1).Uint64()
	}
}
