// Package workload generates the keys and operations the evaluation
// drives through the store: the paper's three synthetic skew profiles
// (§5.3 — WS1 "1%-99%", WS2 "20%-80%", WS3 uniform), plain Zipf, and
// synthetic stand-ins for the four Nutanix production workloads of §5.2
// fitted to the popularity curves of Figure 7 and the sizes of Figure 8.
//
// All generators are deterministic given a seed, and each worker thread
// uses an independently seeded stream so multi-threaded runs are
// reproducible.
package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
)

// KeyDist picks key indexes in [0, Keys) with some popularity skew.
type KeyDist interface {
	// Next returns the next key index.
	Next(rng *rand.Rand) uint64
	// Keys is the size of the key space.
	Keys() uint64
	// Name describes the distribution.
	Name() string
}

// Uniform is the no-skew distribution (WS3).
type Uniform struct{ N uint64 }

// Next implements KeyDist.
func (u Uniform) Next(rng *rand.Rand) uint64 { return uint64(rng.Int63n(int64(u.N))) }

// Keys implements KeyDist.
func (u Uniform) Keys() uint64 { return u.N }

// Name implements KeyDist.
func (u Uniform) Name() string { return "uniform" }

// HotCold is the paper's x%-data / y%-time profile: a HotFraction of the
// key space receives HotAccess of the accesses, uniformly within each
// class (e.g. WS1 = {0.01, 0.99}, WS2 = {0.20, 0.80}).
type HotCold struct {
	N           uint64
	HotFraction float64 // fraction of keys that are hot
	HotAccess   float64 // fraction of accesses going to hot keys
}

// Next implements KeyDist.
func (h HotCold) Next(rng *rand.Rand) uint64 {
	hotKeys := uint64(float64(h.N) * h.HotFraction)
	if hotKeys == 0 {
		hotKeys = 1
	}
	if rng.Float64() < h.HotAccess {
		return uint64(rng.Int63n(int64(hotKeys)))
	}
	coldKeys := h.N - hotKeys
	if coldKeys == 0 {
		return uint64(rng.Int63n(int64(h.N)))
	}
	return hotKeys + uint64(rng.Int63n(int64(coldKeys)))
}

// Keys implements KeyDist.
func (h HotCold) Keys() uint64 { return h.N }

// Name implements KeyDist.
func (h HotCold) Name() string {
	return fmt.Sprintf("hotcold(%g%%-%g%%)", h.HotFraction*100, h.HotAccess*100)
}

// AccessProbability returns the per-key access probability for key index
// i (used to print Figure 7-style popularity curves).
func (h HotCold) AccessProbability(i uint64) float64 {
	hotKeys := uint64(float64(h.N) * h.HotFraction)
	if hotKeys == 0 {
		hotKeys = 1
	}
	if i < hotKeys {
		return h.HotAccess / float64(hotKeys)
	}
	return (1 - h.HotAccess) / float64(h.N-hotKeys)
}

// Zipf draws keys from a Zipf distribution with exponent S > 1.
type Zipf struct {
	N uint64
	S float64
}

// zipfKey identifies one sampler: rand.Zipf is not concurrency-safe and
// its constructor is expensive (it computes the distribution's
// normalization terms), so one sampler is built per (rng, N, S) and
// reused for the life of the stream. Keying by the rng pointer keeps
// samplers goroutine-local — each worker owns its rng — and streams stay
// reproducible: the sampler consumes the same rng in the same order.
type zipfKey struct {
	rng *rand.Rand
	n   uint64
	s   float64
}

// zipfSamplers caches constructed samplers. Entries are tiny (a few
// words each) and bounded by live (worker, distribution) pairs per
// process run, so no eviction is needed.
var zipfSamplers sync.Map // zipfKey -> *rand.Zipf

func zipfFor(rng *rand.Rand, n uint64, s float64) *rand.Zipf {
	k := zipfKey{rng: rng, n: n, s: s}
	if v, ok := zipfSamplers.Load(k); ok {
		return v.(*rand.Zipf)
	}
	zf := rand.NewZipf(rng, s, 1, n-1)
	if zf != nil {
		zipfSamplers.Store(k, zf)
	}
	return zf
}

// Next implements KeyDist. The underlying sampler is constructed once
// per rng (not per sample — rebuilding it per call dominated the
// generator's cost) and consumes the rng directly; safe because each
// worker owns its rng.
func (z Zipf) Next(rng *rand.Rand) uint64 {
	zf := zipfFor(rng, z.N, z.S)
	if zf == nil {
		return 0
	}
	return zf.Uint64()
}

// Keys implements KeyDist.
func (z Zipf) Keys() uint64 { return z.N }

// Name implements KeyDist.
func (z Zipf) Name() string { return fmt.Sprintf("zipf(s=%g)", z.S) }

// MultiTenant models several tenants sharing one store, with traffic
// skewed across tenants: tenant ranks are drawn Zipf(TenantS), and the
// chosen tenant then draws a key from its own contiguous slice of the
// keyspace using the inner PerTenant distribution. Pairing it with a
// range-partitioned store whose splits align with the tenant slices
// turns tenant skew into shard skew — the hot-shard/cold-shard imbalance
// the shared block cache exists to absorb.
type MultiTenant struct {
	// Tenants is the tenant count; tenant t owns key indexes
	// [t*PerTenant.Keys(), (t+1)*PerTenant.Keys()).
	Tenants int
	// TenantS is the Zipf exponent over tenant ranks (> 1; larger is
	// more skewed toward tenant 0).
	TenantS float64
	// PerTenant picks the key within the chosen tenant's slice.
	PerTenant KeyDist
}

// Next implements KeyDist.
func (m MultiTenant) Next(rng *rand.Rand) uint64 {
	var t uint64
	if m.Tenants > 1 {
		if zf := zipfFor(rng, uint64(m.Tenants), m.TenantS); zf != nil {
			t = zf.Uint64()
		}
	}
	return t*m.PerTenant.Keys() + m.PerTenant.Next(rng)
}

// Keys implements KeyDist.
func (m MultiTenant) Keys() uint64 { return uint64(m.Tenants) * m.PerTenant.Keys() }

// Name implements KeyDist.
func (m MultiTenant) Name() string {
	return fmt.Sprintf("multitenant(%d x %s, s=%g)", m.Tenants, m.PerTenant.Name(), m.TenantS)
}

// TenantSplits returns the Tenants-1 split keys (of keySize bytes)
// aligning a range partitioner's shard boundaries with the tenant
// slices, so each tenant's traffic lands on its own shard.
func (m MultiTenant) TenantSplits(keySize int) [][]byte {
	splits := make([][]byte, 0, m.Tenants-1)
	for t := 1; t < m.Tenants; t++ {
		k := make([]byte, keySize)
		EncodeKey(k, uint64(t)*m.PerTenant.Keys())
		splits = append(splits, k)
	}
	return splits
}

// Production approximates one of the four Nutanix metadata workloads
// (paper §5.2). Figure 7 shows two families of popularity curves — W2 and
// W4 have "more skew", W1 and W3 "less skew" — and Figure 8 gives the key
// and update counts. We model each as a three-segment staircase (hot /
// warm / cold), which matches the plateaus visible in Figure 7's
// log-scale curves.
type Production struct {
	ID      int // 1..4
	N       uint64
	Updates uint64
	segs    [3]segment
}

type segment struct {
	keyFrac, accFrac float64
}

// ProductionWorkload returns workload id (1..4) scaled down by scale
// (paper sizes divided by scale; scale 1 = full size). The paper's Figure
// 8 sizes: W1 40M keys / 250M updates, W2 9M/75M, W3 30M/200M, W4 8M/75M.
func ProductionWorkload(id int, scale uint64) (Production, error) {
	if scale == 0 {
		scale = 1
	}
	var p Production
	p.ID = id
	switch id {
	case 1: // less skew
		p.N, p.Updates = 40_000_000, 250_000_000
		p.segs = [3]segment{{0.05, 0.35}, {0.25, 0.40}, {0.70, 0.25}}
	case 2: // more skew
		p.N, p.Updates = 9_000_000, 75_000_000
		p.segs = [3]segment{{0.01, 0.70}, {0.09, 0.20}, {0.90, 0.10}}
	case 3: // less skew
		p.N, p.Updates = 30_000_000, 200_000_000
		p.segs = [3]segment{{0.08, 0.40}, {0.30, 0.35}, {0.62, 0.25}}
	case 4: // more skew
		p.N, p.Updates = 8_000_000, 75_000_000
		p.segs = [3]segment{{0.02, 0.75}, {0.10, 0.15}, {0.88, 0.10}}
	default:
		return p, fmt.Errorf("workload: unknown production workload %d", id)
	}
	p.N /= scale
	p.Updates /= scale
	if p.N == 0 {
		p.N = 1
	}
	return p, nil
}

// Next implements KeyDist.
func (p Production) Next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	var keyStart float64
	for _, s := range p.segs {
		if u < s.accFrac {
			lo := uint64(keyStart * float64(p.N))
			n := uint64(s.keyFrac * float64(p.N))
			if n == 0 {
				n = 1
			}
			return lo + uint64(rng.Int63n(int64(n)))
		}
		u -= s.accFrac
		keyStart += s.keyFrac
	}
	return uint64(rng.Int63n(int64(p.N)))
}

// Keys implements KeyDist.
func (p Production) Keys() uint64 { return p.N }

// Name implements KeyDist.
func (p Production) Name() string { return fmt.Sprintf("production-w%d", p.ID) }

// AccessProbability returns the per-key access probability for Figure 7.
func (p Production) AccessProbability(i uint64) float64 {
	var keyStart float64
	for _, s := range p.segs {
		n := s.keyFrac * float64(p.N)
		if float64(i) < (keyStart+s.keyFrac)*float64(p.N) {
			return s.accFrac / n
		}
		keyStart += s.keyFrac
	}
	return 0
}

// Op is one operation to apply to the store.
type Op struct {
	Read   bool
	Delete bool
	Key    []byte
	Value  []byte
}

// Mix generates a stream of operations over keys drawn from Dist: reads
// with probability ReadFraction, deletes with probability DeleteFraction,
// otherwise updates — the paper's benchmark drivers perform "searching,
// inserting or deleting keys" (§5.1). Keys are KeySize bytes (big-endian
// index, zero padded) and values ValueSize bytes, matching the paper's
// 8 B keys and 255 B values by default.
type Mix struct {
	Dist           KeyDist
	ReadFraction   float64
	DeleteFraction float64
	KeySize        int
	ValueSize      int
}

// DefaultSizes fills the paper's record shape.
func (m Mix) withDefaults() Mix {
	if m.KeySize <= 0 {
		m.KeySize = 8
	}
	if m.ValueSize <= 0 {
		m.ValueSize = 255
	}
	return m
}

// Stream is a per-worker deterministic operation source.
type Stream struct {
	mix  Mix
	rng  *rand.Rand
	kbuf []byte
	vbuf []byte
}

// NewStream returns a stream seeded with seed.
func (m Mix) NewStream(seed int64) *Stream {
	mm := m.withDefaults()
	s := &Stream{
		mix:  mm,
		rng:  rand.New(rand.NewSource(seed)),
		kbuf: make([]byte, mm.KeySize),
		vbuf: make([]byte, mm.ValueSize),
	}
	for i := range s.vbuf {
		s.vbuf[i] = byte('a' + i%26)
	}
	return s
}

// Next produces the next operation. The returned key/value buffers are
// reused across calls; the store copies what it keeps.
func (s *Stream) Next() Op {
	idx := s.mix.Dist.Next(s.rng)
	EncodeKey(s.kbuf, idx)
	op := Op{Key: s.kbuf}
	u := s.rng.Float64()
	switch {
	case u < s.mix.ReadFraction:
		op.Read = true
		return op
	case u < s.mix.ReadFraction+s.mix.DeleteFraction:
		op.Delete = true
		return op
	}
	// Stamp a few bytes so updated values differ.
	binary.BigEndian.PutUint64(s.vbuf[:8], s.rng.Uint64())
	op.Value = s.vbuf
	return op
}

// EncodeKey writes key index idx into buf (big endian in the last 8
// bytes, preserving numeric order lexicographically).
func EncodeKey(buf []byte, idx uint64) {
	for i := range buf {
		buf[i] = 0
	}
	if len(buf) >= 8 {
		binary.BigEndian.PutUint64(buf[len(buf)-8:], idx)
	} else {
		tmp := make([]byte, 8)
		binary.BigEndian.PutUint64(tmp, idx)
		copy(buf, tmp[8-len(buf):])
	}
}
