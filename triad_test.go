package triad

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/vfs"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	for _, profile := range []Profile{ProfileTriad, ProfileBaseline} {
		db, err := Open(Options{FS: vfs.NewMemFS(), Profile: profile})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Put([]byte("k"), []byte("v")); err != nil {
			t.Fatal(err)
		}
		v, err := db.Get([]byte("k"))
		if err != nil || string(v) != "v" {
			t.Fatalf("Get = %q, %v", v, err)
		}
		if err := db.Delete([]byte("k")); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted Get = %v", err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPublicAPIOverrides(t *testing.T) {
	db, err := Open(Options{
		FS:             vfs.NewMemFS(),
		Profile:        ProfileTriad,
		MemtableBytes:  64 << 10,
		CommitLogBytes: 256 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 2000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%05d", i)), make([]byte, 200)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.Flushes == 0 {
		t.Fatal("small memtable never flushed")
	}
	files := db.NumLevelFiles()
	total := 0
	for _, n := range files {
		total += n
	}
	if total == 0 {
		t.Fatal("no table files after flush")
	}
}

func TestPublicAPIAdvanced(t *testing.T) {
	fs := vfs.NewMemFS()
	opts := TriadEngineOptions(fs)
	opts.MemtableBytes = 64 << 10
	opts.HotPolicy = HotTopK
	opts.HotFraction = 0.2
	db, err := Open(Options{Advanced: &opts})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Advanced with nil FS in options falls back to Options.FS.
	opts2 := BaselineEngineOptions(nil)
	db2, err := Open(Options{FS: vfs.NewMemFS(), Advanced: &opts2})
	if err != nil {
		t.Fatal(err)
	}
	db2.Close()
}

func TestPublicAPIIterator(t *testing.T) {
	db, err := Open(Options{FS: vfs.NewMemFS()})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("%02d", i)), []byte("v"))
	}
	it, err := db.NewIterator([]byte("10"), []byte("20"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for it.Next() {
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal("second Close:", err)
	}
	if n != 10 {
		t.Fatalf("scan = %d entries, want 10", n)
	}
}

// TestPublicAPISnapshot exercises the snapshot surface on both the
// unsharded and sharded backends: frozen Get and scan, ErrSnapshotClosed
// after Close, and the open-snapshot gauge.
func TestPublicAPISnapshot(t *testing.T) {
	open := func(sharded bool) (*DB, error) {
		if sharded {
			return Open(Options{Shards: 4, ShardFS: ShardMemFS()})
		}
		return Open(Options{FS: vfs.NewMemFS()})
	}
	for _, sharded := range []bool{false, true} {
		t.Run(fmt.Sprintf("sharded=%v", sharded), func(t *testing.T) {
			db, err := open(sharded)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			for i := 0; i < 200; i++ {
				if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v1")); err != nil {
					t.Fatal(err)
				}
			}
			snap, err := db.NewSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			if db.OpenSnapshots() == 0 {
				t.Fatal("OpenSnapshots = 0 with a live snapshot")
			}
			var b Batch
			for i := 0; i < 200; i++ {
				b.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v2"))
			}
			b.Put([]byte("k999"), []byte("new"))
			if err := db.Apply(&b); err != nil {
				t.Fatal(err)
			}
			if v, err := snap.Get([]byte("k050")); err != nil || string(v) != "v1" {
				t.Fatalf("snapshot Get = %q, %v; want v1", v, err)
			}
			if _, err := snap.Get([]byte("k999")); !errors.Is(err, ErrNotFound) {
				t.Fatalf("snapshot sees post-pin key: %v", err)
			}
			if v, err := db.Get([]byte("k050")); err != nil || string(v) != "v2" {
				t.Fatalf("live Get = %q, %v; want v2", v, err)
			}
			it, err := snap.NewIterator(nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			for it.Next() {
				if string(it.Value()) != "v1" {
					t.Fatalf("snapshot scan: %q = %q, want v1", it.Key(), it.Value())
				}
				n++
			}
			if err := it.Close(); err != nil {
				t.Fatal(err)
			}
			if n != 200 {
				t.Fatalf("snapshot scan saw %d entries, want 200", n)
			}
			if err := snap.Close(); err != nil {
				t.Fatal(err)
			}
			if err := snap.Close(); err != nil {
				t.Fatal("second Close:", err)
			}
			if _, err := snap.Get([]byte("k050")); !errors.Is(err, ErrSnapshotClosed) {
				t.Fatalf("Get after Close = %v, want ErrSnapshotClosed", err)
			}
			if it2, err := snap.NewIterator(nil, nil); !errors.Is(err, ErrSnapshotClosed) {
				t.Fatalf("NewIterator after Close = %v, want ErrSnapshotClosed", err)
			} else if it2 != nil {
				it2.Close()
			}
			if db.OpenSnapshots() != 0 {
				t.Fatalf("OpenSnapshots = %d after Close", db.OpenSnapshots())
			}
		})
	}
}

func TestPublicAPIPersistence(t *testing.T) {
	fs := vfs.NewMemFS()
	db, err := Open(Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Close()
	db2, err := Open(Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 500; i++ {
		v, err := db2.Get([]byte(fmt.Sprintf("key-%04d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("recovered Get(%d) = %q, %v", i, v, err)
		}
	}
}

func TestOpenWithoutFSFails(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without FS succeeded")
	}
}
