package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/client"
)

// syncBuffer is a goroutine-safe bytes.Buffer: run() writes from the
// server goroutine while the test reads after exit.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServerSmoke is the CI smoke: start triadserver on a random port,
// drive a few hundred ops through internal/client, SIGTERM the process,
// and assert a clean exit. Runs under -race in CI.
func TestServerSmoke(t *testing.T) {
	var stdout, stderr syncBuffer
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run(
			[]string{"-addr", "127.0.0.1:0", "-shards", "2", "-commit-delay", "100us", "-metrics", "127.0.0.1:0", "-trace-sample", "1"},
			&stdout, &stderr,
			func(addr string) { ready <- addr },
		)
	}()

	var addr string
	select {
	case addr = <-ready:
	case code := <-exit:
		t.Fatalf("server exited early with %d\nstderr: %s", code, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		if err := c.Send("SET", []byte(fmt.Sprintf("smoke-%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if v, err := c.Receive(); err != nil || v.Text() != "OK" {
			t.Fatalf("reply %d: %v %v", i, v, err)
		}
	}
	for i := 0; i < n; i += 37 {
		key := []byte(fmt.Sprintf("smoke-%04d", i))
		v, found, err := c.Get(key)
		if err != nil || !found || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("%s = %q, %v, %v", key, v, found, err)
		}
	}
	if stats, err := c.Stats(); err != nil || !strings.Contains(stats, "shards: 2") {
		t.Fatalf("STATS: %v\n%s", err, stats)
	}
	// STATS carries the ledger's WA decomposition once user bytes landed.
	if stats, _ := c.Stats(); !strings.Contains(stats, "WA decomposition") {
		t.Fatalf("STATS missing WA decomposition:\n%s", stats)
	}

	// With -trace-sample 1 every command is traced: TRACE RECENT has the
	// traffic above, and TRACE GET resolves one id to a span breakdown.
	recent, err := c.TraceRecent(10)
	if err != nil || len(recent) == 0 {
		t.Fatalf("TRACE RECENT: %d traces, %v", len(recent), err)
	}
	var traceID uint64
	if _, err := fmt.Sscanf(recent[0], "#%d", &traceID); err != nil {
		t.Fatalf("unparseable TRACE RECENT line %q: %v", recent[0], err)
	}
	if rendered, found, err := c.TraceGet(traceID); err != nil || !found || !strings.Contains(rendered, "decode") {
		t.Fatalf("TRACE GET %d = found=%v err=%v\n%s", traceID, found, err, rendered)
	}

	// A paged SCAN / SCAN CONT / SCAN CLOSE round trip: open a cursor
	// with a small page, resume it once, then release it early.
	cursor, keys, _, err := c.ScanOpen([]byte("smoke-"), []byte("smoke-z"), 50)
	if err != nil {
		t.Fatal(err)
	}
	if cursor == client.DoneCursor || len(keys) != 50 {
		t.Fatalf("SCAN first page: cursor=%q, %d keys", cursor, len(keys))
	}
	cursor2, keys2, _, err := c.ScanCont(cursor, 50)
	if err != nil {
		t.Fatal(err)
	}
	if cursor2 != cursor || len(keys2) != 50 || string(keys2[0]) != "smoke-0050" {
		t.Fatalf("SCAN CONT: cursor=%q, %d keys, first %q", cursor2, len(keys2), keys2[0])
	}
	if err := c.ScanClose(cursor); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.ScanCont(cursor, 50); err == nil {
		t.Fatal("SCAN CONT after CLOSE succeeded")
	}
	// Paging through everything still works end to end.
	if ks, _, err := c.ScanAll([]byte("smoke-"), []byte("smoke-z")); err != nil || len(ks) != n {
		t.Fatalf("ScanAll: %d keys, %v", len(ks), err)
	}

	// Scrape /metrics after the traffic above: the exposition must carry
	// the latency histograms (with buckets), the commit-stage timings,
	// and the per-shard gauges for both shards.
	var metricsURL string
	for _, line := range strings.Split(stdout.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "metrics on "); ok {
			metricsURL = rest
		}
	}
	if metricsURL == "" {
		t.Fatalf("no metrics address in stdout:\n%s", stdout.String())
	}
	res, err := http.Get(metricsURL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	dump := string(body)
	for _, want := range []string{
		`triad_cmd_latency_seconds_bucket{cmd="set",le="+Inf"}`,
		`triad_cmd_latency_seconds_bucket{cmd="get",le="+Inf"}`,
		`triad_commit_stage_latency_seconds_bucket{stage="coalesce",le="+Inf"}`,
		`triad_commit_stage_latency_seconds_bucket{stage="commit",le="+Inf"}`,
		`triad_apply_latency_seconds_count`,
		`triad_shard_hot_budget{shard="0"}`,
		`triad_shard_write_amplification{shard="1"}`,
		`triad_io_bytes_total{shard="0",source="wal"}`,
		`triad_io_bytes_total{shard="1",source="user_write"}`,
		"triad_user_writes_total",
		"triad_journal_dropped_total",
		"triad_traces_sampled_total",
		"# TYPE triad_cmd_latency_seconds histogram",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("metrics dump missing %s", want)
		}
	}
	// /debug/trace on the same listener renders the sampled traces.
	base := metricsURL[:strings.LastIndex(metricsURL, "/")]
	if res, err := http.Get(base + "/debug/trace?n=3"); err != nil {
		t.Fatal(err)
	} else {
		tbody, _ := io.ReadAll(res.Body)
		res.Body.Close()
		if !strings.Contains(string(tbody), "traces sampled") || !strings.Contains(string(tbody), "decode") {
			t.Errorf("/debug/trace dump unexpected:\n%s", tbody)
		}
	}
	// The SETs above must be visible in the set-family histogram.
	if !strings.Contains(dump, `triad_cmd_latency_seconds_count{cmd="set"} `+fmt.Sprint(n)) {
		t.Errorf("set latency count != %d in dump", n)
	}
	// Profiling stays off without -pprof.
	if res, err := http.Get(metricsURL[:strings.LastIndex(metricsURL, "/")] + "/debug/pprof/"); err != nil {
		t.Fatal(err)
	} else {
		res.Body.Close()
		if res.StatusCode != http.StatusNotFound {
			t.Errorf("/debug/pprof/ without -pprof: status %d, want 404", res.StatusCode)
		}
	}

	// Deliver a real SIGTERM to the process; run()'s handler must drain
	// and exit 0.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d\nstderr: %s", code, stderr.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("server did not exit on SIGTERM\nstdout: %s", stdout.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "draining") || !strings.Contains(out, "served") {
		t.Fatalf("unexpected shutdown transcript:\n%s", out)
	}
	if s := stderr.String(); s != "" {
		t.Fatalf("stderr not empty:\n%s", s)
	}
}

// TestBadFlags: configuration errors are exit code 1/2, not hangs.
func TestBadFlags(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := run([]string{"-partitioner", "bogus"}, &stdout, &stderr, nil); code != 1 {
		t.Fatalf("bogus partitioner: exit %d", code)
	}
	if code := run([]string{"-partitioner", "range"}, &stdout, &stderr, nil); code != 1 {
		t.Fatalf("range without splits: exit %d", code)
	}
	if code := run([]string{"-not-a-flag"}, &stdout, &stderr, nil); code != 2 {
		t.Fatalf("unknown flag: exit %d", code)
	}
}

// TestRefusesShardedDirUnsharded: pointing a default (-shards 1) server
// at the root of a sharded store must fail fast, not serve an empty
// keyspace.
func TestRefusesShardedDirUnsharded(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir+"/shard-000", 0o755); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr syncBuffer
	if code := run([]string{"-addr", "127.0.0.1:0", "-dir", dir}, &stdout, &stderr, nil); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "created sharded") {
		t.Fatalf("missing guidance in error: %s", stderr.String())
	}
}
