// Command triadserver exposes a TRIAD store over a RESP2-compatible
// wire protocol, with per-connection pipelining and cross-connection
// group commit (see internal/server).
//
// Usage:
//
//	triadserver -addr :6379                          # ephemeral in-memory store
//	triadserver -addr :6379 -dir /var/lib/triad      # durable store
//	triadserver -addr :6379 -dir d -shards 4         # sharded under d/shard-NNN
//	triadserver -addr :6379 -dir d -shards 4 -partitioner range -splits g,n,t
//	triadserver -addr :6379 -metrics 127.0.0.1:9379  # plain-text /metrics dump
//
// Commands: GET, SET, DEL, MGET, MSET, SCAN, EVENTS, SLOWLOG, TRACE,
// STATS, FLUSH, PING, QUIT.
// Any RESP2 client works, redis-cli included:
//
//	redis-cli -p 6379 SET user:1 alice
//	redis-cli -p 6379 GET user:1
//
// Group commit coalesces writes from all connections into shard-split
// batches; tune with -commit-delay / -commit-ops / -commit-bytes /
// -commit-pipeline, or
// compare against one-Apply-per-command with -no-group-commit.
//
// SIGINT/SIGTERM drain gracefully: stop accepting, finish in-flight
// pipelines (committing their writes), flush memtables, close the store.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/lsm"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/shutdown"
	"repro/internal/sstable"
	"repro/internal/vfs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is main, factored for the smoke test: ready (when non-nil) is
// called with the bound RESP address once the server is accepting.
func run(args []string, stdout, stderr io.Writer, ready func(addr string)) int {
	fs := flag.NewFlagSet("triadserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":6379", "TCP listen address for the RESP protocol")
		dir         = fs.String("dir", "", "database directory (empty: ephemeral in-memory store)")
		baseline    = fs.Bool("baseline", false, "use the RocksDB-like baseline profile instead of TRIAD")
		shards      = fs.Int("shards", 1, "partition the keyspace across N engine instances (DIR/shard-NNN when durable)")
		partitioner = fs.String("partitioner", "", "shard router: hash (default for new stores) or range; a durable store's stored partitioner is adopted when empty")
		splits      = fs.String("splits", "", "comma-separated ascending split keys for -partitioner range (N-1 keys for N shards)")
		cacheBytes  = fs.Int64("cache-bytes", 0, "store-wide block-cache budget in bytes, shared by all shards (0: the profile's per-shard default, pooled)")
		syncWAL     = fs.Bool("sync", false, "fsync the commit log on every group commit")
		noGC        = fs.Bool("no-group-commit", false, "apply each write in its own batch instead of group-committing")
		commitDelay = fs.Duration("commit-delay", 0, "hold each write group open this long before committing (0: commit as soon as the committer is free)")
		commitOps   = fs.Int("commit-ops", 4096, "commit the pending group at this many operations")
		commitBytes = fs.Int64("commit-bytes", 1<<20, "commit the pending group at this many payload bytes")
		commitPipe  = fs.Int("commit-pipeline", 4, "sealed write groups applying concurrently (epoch order keeps them serialized; 1 = one apply at a time)")
		metricsAddr = fs.String("metrics", "", "HTTP listen address for the Prometheus /metrics and /stats dump (empty: disabled)")
		enablePprof = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof on the -metrics listener (off by default: profiling endpoints let any client with HTTP access run CPU/heap captures, so bind -metrics to localhost when enabling)")
		noObs       = fs.Bool("no-observability", false, "disable latency histograms, stage timing, event journal and slowlog (overhead comparison)")
		slowlogThr  = fs.Duration("slowlog-threshold", 10*time.Millisecond, "record commands slower than this in SLOWLOG (negative: disable the slowlog)")
		traceSample = fs.Float64("trace-sample", 0, "sample this fraction of commands for end-to-end tracing (0: off, 1: every command); inspect with TRACE RECENT / TRACE GET / /debug/trace")
		traceKeep   = fs.Int("trace-keep", 256, "finished traces retained in the TRACE ring")
		cursorTTL   = fs.Duration("cursor-ttl", 60*time.Second, "close idle SCAN cursors (and release their pinned snapshots) after this long")
		maxCursors  = fs.Int("max-cursors", 16, "cap on open SCAN cursors per connection")
		bgWorkers   = fs.Int("bg-workers", 0, "background flush/compaction worker pool size shared by all shards (0: min(GOMAXPROCS, shards+2), floor 2; negative: legacy two goroutines per shard)")
		subcomp     = fs.Int("subcompactions", 0, "max parallel slices one leveled compaction may split into (0: up to the pool size; 1: monolithic)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	db, err := openStore(*dir, *baseline, *syncWAL, *shards, *partitioner, *splits, *noObs, *cacheBytes, *bgWorkers, *subcomp)
	if err != nil {
		fmt.Fprintln(stderr, "triadserver:", err)
		return 1
	}

	srv := server.New(db, server.Config{
		DisableGroupCommit:   *noGC,
		CommitDelay:          *commitDelay,
		CommitMaxOps:         *commitOps,
		CommitMaxBytes:       *commitBytes,
		CommitPipeline:       *commitPipe,
		CursorTTL:            *cursorTTL,
		MaxCursorsPerConn:    *maxCursors,
		DisableObservability: *noObs,
		SlowlogThreshold:     *slowlogThr,
		TraceSample:          *traceSample,
		TraceKeep:            *traceKeep,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stderr, format+"\n", a...)
		},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "triadserver:", err)
		db.Close()
		return 1
	}

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(stderr, "triadserver: metrics:", err)
			ln.Close()
			db.Close()
			return 1
		}
		metricsSrv = &http.Server{Handler: srv.MetricsHandler(*enablePprof)}
		go metricsSrv.Serve(mln)
		fmt.Fprintf(stdout, "metrics on http://%s/metrics\n", mln.Addr())
	}

	ctx, stop := shutdown.Notify()
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(stdout, "triadserver listening on %s (%d shard(s), group commit %s)\n",
		ln.Addr(), max(*shards, 1), map[bool]string{true: "off", false: "on"}[*noGC])
	if ready != nil {
		ready(ln.Addr().String())
	}

	exit := 0
	drain := func() {
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintln(stderr, "triadserver: drain:", err)
			exit = 1
		}
		cancel()
	}
	select {
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintln(stderr, "triadserver:", err)
			exit = 1
		}
		// The listener is gone but connections and the group committer
		// may still be live; drain them before touching the store.
		drain()
	case <-ctx.Done():
		fmt.Fprintln(stdout, "triadserver: draining...")
		drain()
		if err := <-serveErr; err != nil {
			fmt.Fprintln(stderr, "triadserver:", err)
			exit = 1
		}
	}
	if metricsSrv != nil {
		metricsSrv.Close()
	}
	// Final flush + close: buffered memtables reach disk before exit.
	if err := db.Flush(); err != nil {
		fmt.Fprintln(stderr, "triadserver: final flush:", err)
		exit = 1
	}
	if err := db.Close(); err != nil {
		fmt.Fprintln(stderr, "triadserver: close:", err)
		exit = 1
	}
	batches, ops := srv.GroupCommitStats()
	_, conns, cmds := srv.ConnStats()
	fmt.Fprintf(stdout, "triadserver: served %d commands over %d connections (%d group commits, %d ops)\n",
		cmds, conns, batches, ops)
	return exit
}

// openStore opens the sharded engine the server fronts. The shard layer
// is used even at one shard so STATS carries the per-shard table and
// durable stores get the STORE metadata validation.
func openStore(dir string, baseline, syncWAL bool, shards int, partitioner, splits string, noObs bool, cacheBytes int64, bgWorkers, subcompactions int) (*shard.DB, error) {
	engine := lsm.TriadOptions(nil)
	if baseline {
		engine = lsm.DefaultOptions(nil)
	}
	engine.SyncWAL = syncWAL

	// -cache-bytes is a store-wide budget: build the shared cache at
	// exactly that size rather than letting the shard layer pool the
	// profile's per-shard share times the shard count.
	var cache *sstable.Cache
	if cacheBytes > 0 {
		cache = sstable.NewCache(cacheBytes)
	}

	var part shard.Partitioner
	var splitKeys [][]byte
	if splits != "" {
		for _, s := range strings.Split(splits, ",") {
			splitKeys = append(splitKeys, []byte(s))
		}
	}
	switch partitioner {
	case "":
		if len(splitKeys) > 0 {
			var err error
			if part, err = shard.NewRange(splitKeys...); err != nil {
				return nil, err
			}
		}
	case "hash":
		part = shard.FNV{}
	case "range":
		if len(splitKeys) == 0 {
			return nil, errors.New(`-partitioner range requires -splits (N-1 ascending keys)`)
		}
		var err error
		if part, err = shard.NewRange(splitKeys...); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown -partitioner %q (want hash or range)", partitioner)
	}

	newFS := shard.MemFS()
	if dir != "" {
		newFS = shard.DirFS(dir)
		if shards <= 1 {
			// Refuse to open the root of a sharded store as one shard:
			// the shard subdirectories hold no STORE record at the root,
			// so the open would look like a fresh create and every key
			// would silently read as missing.
			if st, err := os.Stat(filepath.Join(dir, "shard-000")); err == nil && st.IsDir() {
				return nil, fmt.Errorf("store at %s was created sharded (found shard-000/); pass -shards with the original count", dir)
			}
			// Match triaddb's unsharded layout (files at the directory
			// root, no shard-000/), so the two binaries can serve the
			// same single-shard store.
			newFS = func(int) (vfs.FS, error) { return vfs.NewOSFS(dir) }
		}
	}
	return shard.Open(shard.Options{
		Shards:               shards,
		Engine:               engine,
		NewFS:                newFS,
		Partitioner:          part,
		BlockCache:           cache,
		DisableObservability: noObs,
		BackgroundWorkers:    bgWorkers,
		MaxSubcompactions:    subcompactions,
	})
}
