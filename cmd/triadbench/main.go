// Command triadbench regenerates the tables and figures of the TRIAD
// paper's evaluation (§5) against this reproduction.
//
// Usage:
//
//	triadbench -experiment fig9a            # one figure, quick scale
//	triadbench -experiment all -scale full  # everything, paper-like scale
//
// Experiments: fig2, fig7, fig8, fig9a, fig9b (includes 9c), fig9d,
// fig10, fig11, shardscale, scanlocal, conflict, net, cacheskew,
// ingest, all.
//
// -shards N (N > 1) runs every figure against the sharded engine (N lsm
// instances at the same aggregate memory); the shardscale experiment
// instead sweeps shard counts 1..N and tabulates the scaling itself,
// and scanlocal compares hash vs range partitioning scan throughput at
// one shard count. -partitioner hash|range picks the shard router for
// the figure runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		exp     = flag.String("experiment", "all", "which figure to regenerate: fig2|fig7|fig8|fig9a|fig9b|fig9c|fig9d|fig10|fig11|fig10dev|sizetiered|shardscale|scanlocal|conflict|net|cacheskew|ingest|all")
		scale   = flag.String("scale", "quick", "quick (seconds per figure) or full (paper-like sizes)")
		keys    = flag.Uint64("keys", 0, "override synthetic key-space size")
		ops     = flag.Int64("ops", 0, "override timed operation count per run")
		threads = flag.Int("threads", 0, "override worker count for fixed-thread figures")
		shards  = flag.Int("shards", 1, "run figures on a sharded engine of N lsm instances; also the shardscale sweep's maximum and scanlocal's shard count")
		part    = flag.String("partitioner", "hash", "shard router for sharded runs: hash (balanced point ops) or range (shard-local scans)")
	)
	flag.Parse()
	switch *part {
	case "hash", "range":
	default:
		fmt.Fprintf(os.Stderr, "unknown partitioner %q (want hash or range)\n", *part)
		os.Exit(2)
	}

	var s harness.Scale
	switch *scale {
	case "quick":
		s = harness.QuickScale()
	case "full":
		s = harness.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *keys > 0 {
		s.Keys = *keys
	}
	if *ops > 0 {
		s.Ops = *ops
		s.ProdOps = *ops
	}
	if *threads > 0 {
		s.Threads = *threads
	}
	if *shards > 1 {
		s.Shards = *shards
	}
	s.Partitioner = *part

	run := func(name string, fn func() error) {
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
	}

	want := func(name string) bool { return *exp == "all" || strings.EqualFold(*exp, name) }
	any := false
	if want("fig2") {
		any = true
		run("fig2", func() error { _, err := harness.Fig2(s, os.Stdout); return err })
	}
	if want("fig7") {
		any = true
		run("fig7", func() error { return harness.Fig7(s, os.Stdout) })
	}
	if want("fig8") {
		any = true
		run("fig8", func() error { return harness.Fig8(s, os.Stdout) })
	}
	if want("fig9a") {
		any = true
		run("fig9a", func() error { _, err := harness.Fig9A(s, os.Stdout); return err })
	}
	if want("fig9b") || want("fig9c") {
		any = true
		run("fig9b/9c", func() error { _, err := harness.Fig9BC(s, os.Stdout); return err })
	}
	if want("fig9d") {
		any = true
		run("fig9d", func() error { _, err := harness.Fig9D(s, os.Stdout); return err })
	}
	if want("fig10") {
		any = true
		run("fig10", func() error { _, err := harness.Fig10(s, os.Stdout); return err })
	}
	if want("fig11") {
		any = true
		run("fig11", func() error { _, err := harness.Fig11(s, os.Stdout); return err })
	}
	if want("fig10dev") {
		any = true
		run("fig10dev", func() error { _, err := harness.Fig10Device(s, os.Stdout); return err })
	}
	if want("sizetiered") {
		any = true
		run("sizetiered", func() error { _, err := harness.SizeTiered(s, os.Stdout); return err })
	}
	if want("shardscale") {
		any = true
		// The sweep compares shard counts itself, so it runs each count
		// explicitly rather than inheriting the global override.
		sweep := s
		sweep.Shards = 0
		run("shardscale", func() error { _, err := harness.ShardScale(sweep, *shards, os.Stdout); return err })
	}
	if want("scanlocal") {
		any = true
		// Compares hash vs range itself, at one shard count.
		n := *shards
		if n < 2 {
			n = 4
		}
		run("scanlocal", func() error { _, err := harness.ScanLocality(s, n, os.Stdout); return err })
	}
	if want("conflict") {
		any = true
		// Contended cross-shard commits: conflicting Apply batches from
		// 1..8 writers, serialized by the epoch commit pipeline, with a
		// concurrent snapshotter measuring capture latency under load.
		n := *shards
		if n < 2 {
			n = 4
		}
		run("conflict", func() error { _, err := harness.Conflict(s, n, os.Stdout); return err })
	}
	if want("net") {
		any = true
		// Network front end: group commit vs one-Apply-per-command over
		// 1..16 pipelined client connections.
		run("net", func() error { _, err := harness.NetThroughput(s, os.Stdout); return err })
	}
	if want("cacheskew") {
		any = true
		// Shared vs equal-split block cache under skewed multi-tenant
		// reads, at identical total cache bytes.
		run("cacheskew", func() error { _, err := harness.CacheSkew(s, os.Stdout); return err })
	}
	if want("ingest") {
		any = true
		// Sustained ingest to quiesce: legacy free goroutines vs the
		// shared worker pool with parallel subcompactions, at identical
		// aggregate memory.
		ing := s
		if ing.Shards <= 1 {
			ing.Shards = 4
		}
		run("ingest", func() error { _, err := harness.Ingest(ing, os.Stdout); return err })
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
