// Command triaddb is a minimal CLI over the public triad API, operating
// on a durable store in a directory.
//
// Usage:
//
//	triaddb -dir /tmp/db put <key> <value>
//	triaddb -dir /tmp/db get <key>
//	triaddb -dir /tmp/db del <key>
//	triaddb -dir /tmp/db scan [start [limit]]
//	triaddb -dir /tmp/db stats
//	triaddb -dir /tmp/db bench -n 100000
//
// Sharded stores: -shards N partitions the keyspace across N engine
// instances under DIR/shard-NNN. -partitioner range -splits g,n,t
// creates a range-partitioned store (scans stay shard-local); the
// partitioner and shard count are persisted in each shard's STORE
// record, so reopening with a different -shards or -partitioner fails
// with a descriptive error instead of silently misrouting keys. An
// existing store reopens with its stored partitioner when the flag is
// left empty.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	triad "repro"
	"repro/internal/histogram"
	"repro/internal/obs"
	"repro/internal/shutdown"
	"repro/internal/vfs"
	"repro/internal/workload"
)

func main() {
	var (
		dir         = flag.String("dir", "triaddb-data", "database directory")
		baseline    = flag.Bool("baseline", false, "use the RocksDB-like baseline profile instead of TRIAD")
		shards      = flag.Int("shards", 1, "partition the keyspace across N engine instances under DIR/shard-NNN (must match the count the store was created with)")
		partitioner = flag.String("partitioner", "", "shard router: hash (default for new stores) or range; an existing store's stored partitioner is adopted when empty")
		splits      = flag.String("splits", "", "comma-separated ascending split keys for -partitioner range (N-1 keys for N shards), e.g. -splits g,n,t")
		cacheBytes  = flag.Int64("cache-bytes", 0, "store-wide block-cache budget in bytes, shared by all shards (0: the profile default)")
		bgWorkers   = flag.Int("bg-workers", 0, "background flush/compaction worker pool size shared by all shards (0: min(GOMAXPROCS, shards+2), floor 2; negative: legacy per-shard goroutines)")
		subcomp     = flag.Int("subcompactions", 0, "max parallel slices one leveled compaction may split into (0: up to the pool size; 1: monolithic)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: triaddb [-dir DIR] [-baseline] [-shards N] [-partitioner hash|range] [-splits a,b,c] put|get|del|scan|stats|bench ...")
		os.Exit(2)
	}

	profile := triad.ProfileTriad
	if *baseline {
		profile = triad.ProfileBaseline
	}
	opts := triad.Options{
		Profile: profile, Partitioner: *partitioner, BlockCacheBytes: *cacheBytes,
		BackgroundWorkers: *bgWorkers, MaxSubcompactions: *subcomp,
	}
	if *splits != "" {
		for _, s := range strings.Split(*splits, ",") {
			opts.RangeSplits = append(opts.RangeSplits, []byte(s))
		}
	}
	if *shards > 1 {
		opts.Shards = *shards
		opts.ShardFS = triad.ShardDirs(*dir)
	} else {
		// Refuse to open the root of a sharded store as one instance:
		// the shard subdirectories would be invisible and every key
		// would read as missing.
		if st, err := os.Stat(filepath.Join(*dir, "shard-000")); err == nil && st.IsDir() {
			fatalIf(fmt.Errorf("store at %s was created sharded (found shard-000/); pass -shards with the original count", *dir))
		}
		fs, err := vfs.NewOSFS(*dir)
		fatalIf(err)
		opts.FS = fs
	}
	db, err := triad.Open(opts)
	fatalIf(err)
	defer func() { fatalIf(db.Close()) }()

	switch args[0] {
	case "put":
		need(args, 3, "put <key> <value>")
		fatalIf(db.Put([]byte(args[1]), []byte(args[2])))
	case "get":
		need(args, 2, "get <key>")
		v, err := db.Get([]byte(args[1]))
		if errors.Is(err, triad.ErrNotFound) {
			fmt.Println("(not found)")
			return
		}
		fatalIf(err)
		fmt.Println(string(v))
	case "del":
		need(args, 2, "del <key>")
		fatalIf(db.Delete([]byte(args[1])))
	case "scan":
		var start, limit []byte
		if len(args) > 1 {
			start = []byte(args[1])
		}
		if len(args) > 2 {
			limit = []byte(args[2])
		}
		it, err := db.NewIterator(start, limit)
		fatalIf(err)
		for it.Next() {
			fmt.Printf("%s = %s\n", it.Key(), it.Value())
		}
		fatalIf(it.Close())
	case "stats":
		m := db.Metrics()
		fmt.Printf("level files: %v\n", db.NumLevelFiles())
		fmt.Printf("flushes: %d (skipped: %d)  compactions: %d (deferred: %d)\n",
			m.Flushes, m.FlushSkips, m.Compactions, m.CompactionsDeferred)
		fmt.Printf("bytes: logged %d  flushed %d  compacted %d\n",
			m.BytesLogged, m.BytesFlushed, m.BytesCompacted)
		fmt.Printf("WA: %.2f  RA: %.2f\n", m.WriteAmplification(), m.ReadAmplification())
		if *shards > 1 {
			// The sharded engine's dump adds the partitioner, the
			// per-shard balance table, and the ledger's WA decomposition
			// (user/WAL/flush/compaction bytes by source).
			fmt.Print(db.Stats())
		}
		if h := db.ApplyLatency(); h != nil && h.Count() > 0 {
			printQuantiles("apply latency", h.Snapshot())
		}
		if j := db.Events(); j != nil && j.Total() > 0 {
			fmt.Printf("background events (%d total, newest first):\n", j.Total())
			for _, e := range j.Events(5) {
				fmt.Println(" ", e)
			}
		}
	case "bench":
		fsBench := flag.NewFlagSet("bench", flag.ExitOnError)
		n := fsBench.Int64("n", 100_000, "operations")
		keys := fsBench.Uint64("keys", 50_000, "key-space size")
		reads := fsBench.Float64("reads", 0.1, "read fraction")
		fatalIf(fsBench.Parse(args[1:]))
		mix := workload.Mix{Dist: workload.HotCold{N: *keys, HotFraction: 0.01, HotAccess: 0.99}, ReadFraction: *reads}
		stream := mix.NewStream(1)
		// SIGINT/SIGTERM stop the loop instead of killing the process,
		// so the deferred Close flushes buffered work to disk.
		ctx, stop := shutdown.Notify()
		defer stop()
		getLat, putLat := obs.NewHist(), obs.NewHist()
		start := time.Now()
		done := int64(0)
		for ; done < *n; done++ {
			if done%1024 == 0 && ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "triaddb: interrupted, flushing")
				break
			}
			op := stream.Next()
			opStart := time.Now()
			if op.Read {
				if _, err := db.Get(op.Key); err != nil && !errors.Is(err, triad.ErrNotFound) {
					fatalIf(err)
				}
				getLat.Record(time.Since(opStart))
			} else {
				fatalIf(db.Put(op.Key, op.Value))
				putLat.Record(time.Since(opStart))
			}
		}
		el := time.Since(start)
		fmt.Printf("%d ops in %s = %.1f KOPS\n", done, el.Round(time.Millisecond), float64(done)/el.Seconds()/1000)
		printQuantiles("get latency", getLat.Snapshot())
		printQuantiles("put latency", putLat.Snapshot())
		if h := db.ApplyLatency(); h != nil {
			printQuantiles("apply latency", h.Snapshot())
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", args[0])
		os.Exit(2)
	}
}

// printQuantiles renders one latency distribution as a quantile line;
// empty distributions print nothing.
func printQuantiles(name string, h histogram.H) {
	if h.Count() == 0 {
		return
	}
	fmt.Printf("%s: n=%d p50=%s p90=%s p99=%s p99.9=%s max=%s\n",
		name, h.Count(), h.Quantile(0.50), h.Quantile(0.90),
		h.Quantile(0.99), h.Quantile(0.999), h.Max())
}

func need(args []string, n int, usage string) {
	if len(args) < n {
		fmt.Fprintf(os.Stderr, "usage: triaddb %s\n", usage)
		os.Exit(2)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "triaddb:", err)
		os.Exit(1)
	}
}
