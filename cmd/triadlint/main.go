// Command triadlint runs TRIAD's own static-analysis suite — the
// custom invariant checks in internal/lint — over a package pattern,
// printing findings in file:line:col form and exiting non-zero when
// there are any. It is the machine check for the conventions the
// store's correctness rests on: epoch-ticket lifetimes, snapshot/
// iterator/cache-handle closing, obs nil-receiver safety, atomic field
// access discipline, and metric naming.
//
// Usage:
//
//	triadlint [-only a,b] [packages]     (default ./...)
//	triadlint -list
//
// The driver is standalone rather than a `go vet -vettool` plugin
// because the vet protocol lives in golang.org/x/tools and this
// repository deliberately carries no module dependencies; the analyzer
// shapes mirror go/analysis so they could be rehosted if that changes.
// Test files are analyzed too: the invariants hold in tests as much as
// in the server (a leaked epoch ticket stalls a test store just the
// same).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("triadlint", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Parse(args)

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(stderr, "triadlint: unknown analyzer %q (see -list)\n", name)
			return 2
		}
		analyzers = sel
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := lint.NewLoader(".")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "triadlint: %v\n", err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintf(stdout, "%s\n", d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "triadlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
